// Figure 1 reproduction: percentage of cache lines with different access
// numbers before eviction in a 1 GB cHBM, for cache-line sizes 64 B..64 KB,
// on the mcf, wrf and xz workload profiles.
//
// N is the average access number per 64 B of data in a line: the per-line
// access count divided by (line size / 64 B). Buckets follow the paper:
// N < 5, 5 <= N < 10, 10 <= N < 15, 15 <= N < 20, N >= 20.
//
// The paper's reading: mcf (strong spatial + temporal) keeps high N at all
// line sizes; wrf (weak spatial) loses hot lines as lines grow; xz (weak
// temporal) is dominated by N < 5 everywhere.
#include <iostream>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/system.h"
#include "trace/generator.h"

using namespace bb;

namespace {

int run(const Flags&) {
  const u64 base_misses = sim::env_u64("BB_TARGET_MISSES", 1'000'000);
  const std::vector<u64> line_sizes = {64,       256,      1 * KiB,
                                       4 * KiB,  16 * KiB, 64 * KiB};
  const char* buckets[] = {"N<5", "5<=N<10", "10<=N<15", "15<=N<20", "N>=20"};

  for (const char* wl : {"mcf", "wrf", "xz"}) {
    const auto& profile = trace::WorkloadProfile::by_name(wl);
    std::cout << "\nFigure 1 — " << wl << " (spatial " << profile.spatial
              << ", temporal " << profile.temporal << ")\n";
    TextTable table({"line size", buckets[0], buckets[1], buckets[2],
                     buckets[3], buckets[4]});

    for (const u64 line : line_sizes) {
      cache::CacheParams p;
      p.name = "cHBM";
      p.size_bytes = 1 * GiB;
      p.line_bytes = line;
      p.ways = 16;
      p.policy = cache::PolicyKind::kLru;
      cache::Cache chbm(p);

      Histogram hist({5, 10, 15, 20});
      const double per64 = static_cast<double>(line) / 64.0;
      chbm.set_eviction_hook([&](const cache::EvictionInfo& ev) {
        hist.sample(static_cast<double>(ev.access_count) / per64);
      });

      // Cover the footprint at least twice (capped): the paper's 6 B-
      // instruction slices re-visit their data many times, and the
      // distribution is over lines, so too-short windows leave every
      // line in the N<5 bucket.
      const u64 lines64 = profile.footprint_bytes() / 64;
      const u64 misses =
          std::min<u64>(std::max(base_misses, 2 * lines64), 8'000'000);
      trace::TraceGenerator gen(profile, 7);
      for (u64 i = 0; i < misses; ++i) {
        chbm.access(gen.next().addr, AccessType::kRead);
      }
      chbm.flush();  // count lines still resident at the end

      std::vector<std::string> row = {fmt_bytes(static_cast<double>(line))};
      for (std::size_t b = 0; b < 5; ++b) {
        row.push_back(fmt_percent(hist.fraction(b), 1));
      }
      table.add_row(row);
      std::cerr << wl << " line " << line << " done\n";
    }
    table.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "fig1_access_distribution", run);
}
