// Extension study: Bumblebee against the two POM ancestors the paper
// cites but does not plot — PoM (reference [6], competing-counter sector
// swaps) and MemPod (reference [8], interval-based MEA migration) — on
// one workload per Figure 1 quadrant.
#include <iostream>

#include "baselines/factory.h"
#include "common/cli.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

namespace {

int run(const Flags&) {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 60'000);
  sim::SystemConfig sys_cfg;
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 200)) / 100.0;
  sim::System system(sys_cfg);

  const std::vector<std::string> workloads = {"mcf", "wrf", "xz", "roms"};
  const std::vector<std::string> designs = {"PoM", "MemPod", "Chameleon",
                                            "Bumblebee"};
  baselines::require_design_names(designs);

  std::cout << "Normalized IPC: Bumblebee vs POM-family designs\n";
  std::vector<std::string> headers = {"design"};
  for (const auto& w : workloads) headers.push_back(w);
  TextTable table(headers);

  std::vector<sim::RunResult> base;
  std::vector<u64> instr;
  for (const auto& name : workloads) {
    const auto& w = trace::WorkloadProfile::by_name(name);
    instr.push_back(sim::default_instructions_for(w, target_misses));
    base.push_back(system.run("DRAM-only", w, instr.back()));
  }
  for (const auto& d : designs) {
    std::vector<std::string> row = {d};
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto& w = trace::WorkloadProfile::by_name(workloads[i]);
      const auto r = system.run(d, w, instr[i]);
      row.push_back(fmt_double(r.ipc / base[i].ipc, 2));
      std::cerr << '.' << std::flush;
    }
    std::cerr << '\n';
    table.add_row(row);
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "extensions_comparison", run);
}
