// Figure 8 reproduction: Bumblebee vs Banshee / Alloy Cache / Unison Cache
// / Chameleon / Hybrid2, normalized to a DRAM-only baseline, grouped by
// MPKI class.
//
//   (a) normalized IPC speedup        (higher is better)
//   (b) normalized HBM traffic        (lower is better)
//   (c) normalized off-chip traffic   (lower is better; normalized to the
//       DRAM-only baseline's off-chip traffic)
//   (d) normalized memory dynamic energy (lower is better)
//
// Environment knobs: BB_SIM_SCALE (percent of default run length),
// BB_TARGET_MISSES (default 120000).
#include <iostream>
#include <vector>

#include "common/table.h"
#include "sim/system.h"

using namespace bb;

int main() {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 120'000);
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;
  sim::System system(sys_cfg);

  std::vector<sim::RunResult> baseline;
  std::vector<std::vector<sim::RunResult>> results;
  const auto& designs = baselines::figure8_designs();

  std::cerr << "fig8: simulating " << trace::WorkloadProfile::spec2017().size()
            << " workloads x " << (designs.size() + 1) << " designs...\n";
  for (const auto& w : trace::WorkloadProfile::spec2017()) {
    const u64 instr = sim::default_instructions_for(w, target_misses,
                                     /*min_instructions=*/50'000'000);
    baseline.push_back(system.run("DRAM-only", w, instr));
    std::cerr << "  " << w.name << " (" << instr / 1'000'000 << "M instr)"
              << std::flush;
    if (results.empty()) results.resize(designs.size());
    for (std::size_t d = 0; d < designs.size(); ++d) {
      results[d].push_back(system.run(designs[d], w, instr));
      std::cerr << '.' << std::flush;
    }
    std::cerr << '\n';
  }

  struct Panel {
    const char* title;
    double (*metric)(const sim::RunResult&);
    const char* better;
  };
  const Panel panels[] = {
      {"Figure 8(a): Normalized IPC speedup", sim::metric_ipc, "higher"},
      {"Figure 8(b): Normalized HBM traffic (vs Bumblebee)",
       sim::metric_hbm_traffic, "lower"},
      {"Figure 8(c): Normalized off-chip DRAM traffic", sim::metric_dram_traffic,
       "lower"},
      {"Figure 8(d): Normalized memory dynamic energy", sim::metric_energy,
       "lower"},
  };

  for (const auto& panel : panels) {
    std::cout << "\n" << panel.title << "  [" << panel.better
              << " is better]\n";
    TextTable table({"design", "High", "Medium", "Low", "All"});

    // HBM traffic has no DRAM-only reference (the baseline has no HBM);
    // normalize it to Bumblebee's HBM traffic instead, as the paper's
    // relative-to-best reading suggests.
    const bool vs_bumblebee = panel.metric == sim::metric_hbm_traffic;
    const std::vector<sim::RunResult>* ref = &baseline;
    if (vs_bumblebee) {
      for (std::size_t d = 0; d < designs.size(); ++d) {
        if (designs[d] == "Bumblebee") ref = &results[d];
      }
    }

    const bool sums = panel.metric != sim::metric_ipc;
    for (std::size_t d = 0; d < designs.size(); ++d) {
      const auto g = sums
                         ? sim::group_by_mpki_sums(results[d], *ref,
                                                   panel.metric)
                         : sim::group_by_mpki(results[d], *ref, panel.metric);
      table.add_row({designs[d], fmt_double(g.high, 2), fmt_double(g.medium, 2),
                     fmt_double(g.low, 2), fmt_double(g.all, 2)});
    }
    table.print(std::cout);
  }

  // Headline claims from the paper for context.
  std::cout << "\nPaper reference points: Bumblebee outperforms the best "
               "state-of-the-art design by at least 46.7% (High), 44.9% "
               "(Medium), 9.9% (Low) and 35.2% (All); 17.9% less HBM "
               "traffic and 9.1% less off-chip traffic than the best; "
               "10.9%~20.1% less memory dynamic energy.\n";
  return 0;
}
