// Figure 8 reproduction: Bumblebee vs Banshee / Alloy Cache / Unison Cache
// / Chameleon / Hybrid2, normalized to a DRAM-only baseline, grouped by
// MPKI class.
//
//   (a) normalized IPC speedup        (higher is better)
//   (b) normalized HBM traffic        (lower is better)
//   (c) normalized off-chip traffic   (lower is better; normalized to the
//       DRAM-only baseline's off-chip traffic)
//   (d) normalized memory dynamic energy (lower is better)
//
// Flags: --jobs N (worker threads, default = all hardware threads).
// Environment knobs: BB_SIM_SCALE (percent of default run length),
// BB_TARGET_MISSES (default 120000).
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;

  const auto& designs = baselines::figure8_designs();
  std::vector<std::string> all_designs = {"DRAM-only"};
  all_designs.insert(all_designs.end(), designs.begin(), designs.end());
  const auto workloads = trace::WorkloadProfile::spec2017();

  std::cerr << "fig8: simulating " << workloads.size() << " workloads x "
            << all_designs.size() << " designs...\n";
  sim::ExperimentRunner runner(sys_cfg);
  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.progress = true;
  opts.target_misses = sim::env_u64("BB_TARGET_MISSES", 120'000);
  opts.min_instructions = 50'000'000;
  runner.run_matrix(all_designs, workloads, opts);

  const std::vector<sim::RunResult> baseline = runner.for_design("DRAM-only");
  std::vector<std::vector<sim::RunResult>> results;
  for (const auto& d : designs) results.push_back(runner.for_design(d));

  struct Panel {
    const char* title;
    double (*metric)(const sim::RunResult&);
    const char* better;
  };
  const Panel panels[] = {
      {"Figure 8(a): Normalized IPC speedup", sim::metric_ipc, "higher"},
      {"Figure 8(b): Normalized HBM traffic (vs Bumblebee)",
       sim::metric_hbm_traffic, "lower"},
      {"Figure 8(c): Normalized off-chip DRAM traffic", sim::metric_dram_traffic,
       "lower"},
      {"Figure 8(d): Normalized memory dynamic energy", sim::metric_energy,
       "lower"},
  };

  for (const auto& panel : panels) {
    std::cout << "\n" << panel.title << "  [" << panel.better
              << " is better]\n";
    TextTable table({"design", "High", "Medium", "Low", "All"});

    // HBM traffic has no DRAM-only reference (the baseline has no HBM);
    // normalize it to Bumblebee's HBM traffic instead, as the paper's
    // relative-to-best reading suggests.
    const bool vs_bumblebee = panel.metric == sim::metric_hbm_traffic;
    const std::vector<sim::RunResult>* ref = &baseline;
    if (vs_bumblebee) {
      for (std::size_t d = 0; d < designs.size(); ++d) {
        if (designs[d] == "Bumblebee") ref = &results[d];
      }
    }

    const bool sums = panel.metric != sim::metric_ipc;
    for (std::size_t d = 0; d < designs.size(); ++d) {
      const auto g = sums
                         ? sim::group_by_mpki_sums(results[d], *ref,
                                                   panel.metric)
                         : sim::group_by_mpki(results[d], *ref, panel.metric);
      table.add_row({designs[d], fmt_double(g.high, 2), fmt_double(g.medium, 2),
                     fmt_double(g.low, 2), fmt_double(g.all, 2)});
    }
    table.print(std::cout);
  }

  // Headline claims from the paper for context.
  std::cout << "\nPaper reference points: Bumblebee outperforms the best "
               "state-of-the-art design by at least 46.7% (High), 44.9% "
               "(Medium), 9.9% (Low) and 35.2% (All); 17.9% less HBM "
               "traffic and 9.1% less off-chip traffic than the best; "
               "10.9%~20.1% less memory dynamic energy.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "fig8_comparison", run);
}
