// Component microbenchmarks (google-benchmark): throughput of the hot
// simulation paths — these bound how many instructions per second the
// full-system harnesses can replay.
#include <benchmark/benchmark.h>

#include "bumblebee/controller.h"
#include "bumblebee/hot_table.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "mem/dram_device.h"
#include "trace/generator.h"

using namespace bb;

static void BM_DramDeviceAccess(benchmark::State& state) {
  mem::DramDevice dev(mem::DramTimingParams::hbm2_1gb());
  Rng rng(1);
  Tick now = 0;
  for (auto _ : state) {
    now += 5000;
    benchmark::DoNotOptimize(
        dev.access(rng.next_below(dev.capacity()), 64, AccessType::kRead,
                   now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramDeviceAccess);

static void BM_DramDevicePageMove(benchmark::State& state) {
  mem::DramDevice dev(mem::DramTimingParams::ddr4_3200_10gb());
  Rng rng(2);
  Tick now = 0;
  for (auto _ : state) {
    now += 200000;
    benchmark::DoNotOptimize(dev.access(
        rng.next_below(dev.capacity() / (64 * KiB)) * (64 * KiB), 64 * KiB,
        AccessType::kRead, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramDevicePageMove);

static void BM_TraceGenerator(benchmark::State& state) {
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name("mcf"), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGenerator);

static void BM_HotTableTouch(benchmark::State& state) {
  bumblebee::HotTable hot(8, 8, 4095);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hot.touch_dram(
        static_cast<u32>(rng.next_below(88))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotTableTouch);

static void BM_CacheAccess(benchmark::State& state) {
  cache::CacheParams p;
  p.size_bytes = 8 * MiB;
  p.ways = 16;
  p.policy = cache::PolicyKind::kDrrip;
  cache::Cache cache(p);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(rng.next_below(64 * MiB), AccessType::kRead));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void BM_BumblebeeAccess(benchmark::State& state) {
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  mem::DramDevice dram(mem::DramTimingParams::ddr4_3200_10gb());
  bumblebee::BumblebeeController ctl(bumblebee::BumblebeeConfig::baseline(),
                                     hbm, dram);
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name("mcf"), 6);
  Tick now = 0;
  for (auto _ : state) {
    const auto rec = gen.next();
    now += rec.inst_gap * 70;
    benchmark::DoNotOptimize(ctl.access(rec.addr, rec.type, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BumblebeeAccess);

static void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(100000, 1.1);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

BENCHMARK_MAIN();
