// Extension study: how does the Bumblebee advantage scale with HBM
// capacity? The paper evaluates a single 1 GB HBM; this sweep varies the
// die-stacked capacity from 256 MB to 2 GB (geometry rescales: the number
// of remapping sets tracks capacity, associativity stays 8).
#include <iostream>

#include "common/table.h"
#include "sim/system.h"

using namespace bb;

int main() {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 60'000);
  const std::vector<std::string> workloads = {"mcf", "wrf", "roms"};

  std::cout << "Normalized IPC vs HBM capacity (Bumblebee / Banshee)\n";
  std::vector<std::string> headers = {"HBM capacity"};
  for (const auto& w : workloads) headers.push_back(w);
  TextTable table(headers);

  for (const u64 cap_mb : {256, 512, 1024, 2048}) {
    sim::SystemConfig cfg;
    cfg.hbm.capacity_bytes = cap_mb * MiB;
    cfg.warmup_ratio =
        static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 200)) / 100.0;
    sim::System system(cfg);

    std::vector<std::string> row = {std::to_string(cap_mb) + " MiB"};
    for (const auto& name : workloads) {
      const auto& w = trace::WorkloadProfile::by_name(name);
      const u64 instr = sim::default_instructions_for(w, target_misses);
      const auto base = system.run("DRAM-only", w, instr);
      const auto bb_run = system.run("Bumblebee", w, instr);
      const auto ban = system.run("Banshee", w, instr);
      row.push_back(fmt_double(bb_run.ipc / base.ipc, 2) + " / " +
                    fmt_double(ban.ipc / base.ipc, 2));
      std::cerr << '.' << std::flush;
    }
    std::cerr << '\n';
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nBumblebee's lead is largest when HBM is scarce (the\n"
               "hotness threshold T gates admission aggressively); with\n"
               "over-provisioned HBM the low-Rh eager paths keep moving\n"
               "marginal data and the advantage narrows — a capacity-aware\n"
               "admission policy is an obvious extension.\n";
  return 0;
}
