// Extension study: how does the Bumblebee advantage scale with HBM
// capacity? The paper evaluates a single 1 GB HBM; this sweep varies the
// die-stacked capacity from 256 MB to 2 GB (geometry rescales: the number
// of remapping sets tracks capacity, associativity stays 8).
//
// Flags: --jobs N (worker threads, default = all hardware threads).
#include <iostream>

#include "common/cli.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  const std::vector<std::string> workload_names = {"mcf", "wrf", "roms"};
  std::vector<trace::WorkloadProfile> workloads;
  for (const auto& name : workload_names) {
    workloads.push_back(trace::WorkloadProfile::by_name(name));
  }

  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.progress = true;
  opts.target_misses = sim::env_u64("BB_TARGET_MISSES", 60'000);
  opts.min_instructions = 20'000'000;

  std::cout << "Normalized IPC vs HBM capacity (Bumblebee / Banshee)\n";
  std::vector<std::string> headers = {"HBM capacity"};
  for (const auto& w : workload_names) headers.push_back(w);
  TextTable table(headers);

  for (const u64 cap_mb : {256, 512, 1024, 2048}) {
    sim::SystemConfig cfg;
    cfg.hbm.capacity_bytes = cap_mb * MiB;
    cfg.warmup_ratio =
        static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 200)) / 100.0;

    // Each capacity point is its own matrix: the geometry (and therefore
    // the System configuration) changes with the device.
    sim::ExperimentRunner runner(cfg);
    runner.run_matrix({"DRAM-only", "Bumblebee", "Banshee"}, workloads, opts);

    const auto bumble =
        runner.normalized("Bumblebee", "DRAM-only", sim::metric_ipc);
    const auto banshee =
        runner.normalized("Banshee", "DRAM-only", sim::metric_ipc);
    std::vector<std::string> row = {std::to_string(cap_mb) + " MiB"};
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      row.push_back(fmt_double(bumble[i].second, 2) + " / " +
                    fmt_double(banshee[i].second, 2));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nBumblebee's lead is largest when HBM is scarce (the\n"
               "hotness threshold T gates admission aggressively); with\n"
               "over-provisioned HBM the low-Rh eager paths keep moving\n"
               "marginal data and the advantage narrows — a capacity-aware\n"
               "admission policy is an obvious extension.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "hbm_capacity_sweep", run);
}
