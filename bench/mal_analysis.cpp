// Section II-B reproduction: metadata access latency (MAL) analysis.
//
// The share of total memory-request latency spent on metadata accesses,
// per design. Paper: 2% ~ 26% for designs whose metadata overflows SRAM
// (in-HBM tags, metadata caches); Bumblebee keeps all metadata in a few
// hundred KB of SRAM and its MAL share stays minimal. The Meta-H ablation
// shows what happens if Bumblebee's metadata moved to HBM.
#include <algorithm>
#include <iostream>
#include <vector>

#include "baselines/factory.h"
#include "common/cli.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

namespace {

int run(const Flags&) {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 50'000);
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;
  sim::System system(sys_cfg);

  const std::vector<std::string> designs = {"Bumblebee", "Meta-H", "Banshee",
                                            "AC", "UC", "Chameleon",
                                            "Hybrid2"};
  baselines::require_design_names(designs);
  std::vector<std::vector<double>> mal(designs.size());

  for (const auto& w : trace::WorkloadProfile::spec2017()) {
    const u64 instr = sim::default_instructions_for(w, target_misses);
    for (std::size_t d = 0; d < designs.size(); ++d) {
      mal[d].push_back(system.run(designs[d], w, instr).mal_fraction);
    }
    std::cerr << w.name << " done\n";
  }

  std::cout << "Section II-B: metadata access latency share of total "
               "request latency (paper: 2%~26% for prior designs)\n";
  TextTable table({"design", "min", "mean", "max"});
  for (std::size_t d = 0; d < designs.size(); ++d) {
    auto& v = mal[d];
    double sum = 0;
    for (double x : v) sum += x;
    table.add_row({designs[d],
                   fmt_percent(*std::min_element(v.begin(), v.end()), 1),
                   fmt_percent(sum / static_cast<double>(v.size()), 1),
                   fmt_percent(*std::max_element(v.begin(), v.end()), 1)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "mal_analysis", run);
}
