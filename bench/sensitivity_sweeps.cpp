// Sensitivity ablations for the design choices the paper fixes by fiat:
//   * hot-table off-chip queue depth (paper: 8, "for a balance between the
//     performance and metadata size"),
//   * the "most blocks cached" switch threshold for cHBM -> mHBM,
//   * the zombie-page window (movement trigger 3).
//
// Three representative workloads spanning the Figure 1 taxonomy. Results
// justify the defaults: depth 8 and a majority switch threshold are on the
// flat part of the curve.
#include <iostream>

#include "bumblebee/config.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

int main() {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 60'000);
  sim::SystemConfig sys_cfg;
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 200)) / 100.0;
  sim::System system(sys_cfg);

  const std::vector<std::string> workloads = {"mcf", "wrf", "roms"};
  std::vector<sim::RunResult> base;
  std::vector<u64> instr;
  for (const auto& name : workloads) {
    const auto& w = trace::WorkloadProfile::by_name(name);
    instr.push_back(sim::default_instructions_for(w, target_misses));
    base.push_back(system.run("DRAM-only", w, instr.back()));
  }

  auto sweep = [&](const std::string& title,
                   const std::vector<std::pair<std::string,
                                               bumblebee::BumblebeeConfig>>&
                       configs) {
    std::cout << "\n" << title << " (normalized IPC)\n";
    std::vector<std::string> headers = {"setting"};
    for (const auto& w : workloads) headers.push_back(w);
    TextTable table(headers);
    for (const auto& [label, cfg] : configs) {
      std::vector<std::string> row = {label};
      for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto& w = trace::WorkloadProfile::by_name(workloads[i]);
        const auto r = system.run_bumblebee(cfg, w, instr[i]);
        row.push_back(fmt_double(r.ipc / base[i].ipc, 2));
        std::cerr << '.' << std::flush;
      }
      table.add_row(row);
    }
    std::cerr << '\n';
    table.print(std::cout);
  };

  {
    std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>> cfgs;
    for (u32 depth : {2u, 4u, 8u, 16u}) {
      bumblebee::BumblebeeConfig c;
      c.dram_queue_depth = depth;
      cfgs.emplace_back("depth " + std::to_string(depth), c);
    }
    sweep("Hot-table off-chip queue depth (paper default: 8)", cfgs);
  }
  {
    std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>> cfgs;
    for (double f : {0.25, 0.5, 0.75, 0.9}) {
      bumblebee::BumblebeeConfig c;
      c.switch_fraction = f;
      cfgs.emplace_back("switch > " + fmt_percent(f, 0), c);
    }
    sweep("cHBM->mHBM switch threshold (paper: most blocks cached)", cfgs);
  }
  {
    std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>> cfgs;
    for (u32 wdw : {256u, 1024u, 4096u}) {
      bumblebee::BumblebeeConfig c;
      c.zombie_window = wdw;
      cfgs.emplace_back("window " + std::to_string(wdw), c);
    }
    sweep("Zombie-page window (set accesses)", cfgs);
  }
  return 0;
}
