// Sensitivity ablations for the design choices the paper fixes by fiat:
//   * hot-table off-chip queue depth (paper: 8, "for a balance between the
//     performance and metadata size"),
//   * the "most blocks cached" switch threshold for cHBM -> mHBM,
//   * the zombie-page window (movement trigger 3).
//
// Three representative workloads spanning the Figure 1 taxonomy. Results
// justify the defaults: depth 8 and a majority switch threshold are on the
// flat part of the curve.
//
// Flags: --jobs N (worker threads, default = all hardware threads).
#include <iostream>

#include "bumblebee/config.h"
#include "common/cli.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  sim::SystemConfig sys_cfg;
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 200)) / 100.0;
  sim::ExperimentRunner runner(sys_cfg);

  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.progress = true;
  opts.target_misses = sim::env_u64("BB_TARGET_MISSES", 60'000);
  opts.min_instructions = 20'000'000;

  const std::vector<std::string> workload_names = {"mcf", "wrf", "roms"};
  std::vector<trace::WorkloadProfile> workloads;
  for (const auto& name : workload_names) {
    workloads.push_back(trace::WorkloadProfile::by_name(name));
  }

  // Every sweep point is one labelled configuration; a single matrix runs
  // them all (plus the shared DRAM-only baseline) across the workloads.
  std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>> configs;
  for (u32 depth : {2u, 4u, 8u, 16u}) {
    bumblebee::BumblebeeConfig c;
    c.dram_queue_depth = depth;
    configs.emplace_back("depth " + std::to_string(depth), c);
  }
  for (double f : {0.25, 0.5, 0.75, 0.9}) {
    bumblebee::BumblebeeConfig c;
    c.switch_fraction = f;
    configs.emplace_back("switch > " + fmt_percent(f, 0), c);
  }
  for (u32 wdw : {256u, 1024u, 4096u}) {
    bumblebee::BumblebeeConfig c;
    c.zombie_window = wdw;
    configs.emplace_back("window " + std::to_string(wdw), c);
  }

  runner.run_matrix({"DRAM-only"}, workloads, opts);
  runner.run_bumblebee_matrix(configs, workloads, opts);

  auto sweep = [&](const std::string& title, std::size_t first,
                   std::size_t count) {
    std::cout << "\n" << title << " (normalized IPC)\n";
    std::vector<std::string> headers = {"setting"};
    for (const auto& w : workload_names) headers.push_back(w);
    TextTable table(headers);
    for (std::size_t c = first; c < first + count; ++c) {
      std::vector<std::string> row = {configs[c].first};
      for (const auto& [workload, ratio] :
           runner.normalized(configs[c].first, "DRAM-only",
                             sim::metric_ipc)) {
        (void)workload;
        row.push_back(fmt_double(ratio, 2));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  };

  sweep("Hot-table off-chip queue depth (paper default: 8)", 0, 4);
  sweep("cHBM->mHBM switch threshold (paper: most blocks cached)", 4, 4);
  sweep("Zombie-page window (set accesses)", 8, 3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "sensitivity_sweeps", run);
}
