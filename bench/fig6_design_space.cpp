// Figure 6 reproduction: design-space exploration over block and page size.
//
// Normalized IPC (geomean over all Table II benchmarks, vs the DRAM-only
// baseline) for block-page combinations {1,2,4} KB x {64,96,128} KB, and
// the metadata budget of each configuration (all must fit in 512 KB SRAM).
//
// Paper reference values (block-page, KB): 1-64: 1.98, 1-96: 1.93,
// 1-128: 1.86, 2-64: 2.00, 2-96: 1.93, 2-128: 1.87, 4-64: 1.93,
// 4-96: 1.85, 4-128: 1.78. Best: 2 KB blocks, 64 KB pages.
#include <iostream>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

int main() {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 50'000);
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;
  sim::System system(sys_cfg);

  const std::vector<std::pair<u64, u64>> combos = {
      {1, 64}, {1, 96}, {1, 128}, {2, 64}, {2, 96},
      {2, 128}, {4, 64}, {4, 96}, {4, 128}};
  const double paper[] = {1.98, 1.93, 1.86, 2.00, 1.93, 1.87, 1.93, 1.85,
                          1.78};

  // Baselines once per workload.
  std::vector<sim::RunResult> base;
  std::vector<u64> instr;
  for (const auto& w : trace::WorkloadProfile::spec2017()) {
    instr.push_back(sim::default_instructions_for(w, target_misses,
                                     /*min_instructions=*/50'000'000));
    base.push_back(system.run("DRAM-only", w, instr.back()));
    std::cerr << "baseline " << w.name << " done\n";
  }

  TextTable table({"block-page (KB)", "normalized IPC", "paper", "metadata"});
  for (std::size_t c = 0; c < combos.size(); ++c) {
    bumblebee::BumblebeeConfig cfg;
    cfg.block_bytes = combos[c].first * KiB;
    cfg.page_bytes = combos[c].second * KiB;

    std::vector<double> speedups;
    std::cerr << "config " << combos[c].first << "-" << combos[c].second
              << std::flush;
    std::size_t i = 0;
    for (const auto& w : trace::WorkloadProfile::spec2017()) {
      const auto r = system.run_bumblebee(cfg, w, instr[i]);
      speedups.push_back(r.ipc / base[i].ipc);
      ++i;
      std::cerr << '.' << std::flush;
    }
    std::cerr << '\n';

    const auto geo = bumblebee::Geometry::make(cfg, 1 * GiB, 10 * GiB);
    const auto budget = bumblebee::metadata_budget(cfg, geo);
    table.add_row({std::to_string(combos[c].first) + "-" +
                       std::to_string(combos[c].second),
                   fmt_double(geomean(speedups), 2), fmt_double(paper[c], 2),
                   fmt_bytes(static_cast<double>(budget.total()))});
  }
  std::cout << "\nFigure 6: normalized IPC for block-page configurations\n";
  table.print(std::cout);
  return 0;
}
