// Figure 6 reproduction: design-space exploration over block and page size.
//
// Normalized IPC (geomean over all Table II benchmarks, vs the DRAM-only
// baseline) for block-page combinations {1,2,4} KB x {64,96,128} KB, and
// the metadata budget of each configuration (all must fit in 512 KB SRAM).
//
// Paper reference values (block-page, KB): 1-64: 1.98, 1-96: 1.93,
// 1-128: 1.86, 2-64: 2.00, 2-96: 1.93, 2-128: 1.87, 4-64: 1.93,
// 4-96: 1.85, 4-128: 1.78. Best: 2 KB blocks, 64 KB pages.
//
// Flags: --jobs N (worker threads, default = all hardware threads).
// Environment knobs: BB_TARGET_MISSES, BB_WARMUP_PCT, BB_SIM_SCALE.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;
  sim::ExperimentRunner runner(sys_cfg);

  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.progress = true;
  opts.target_misses = sim::env_u64("BB_TARGET_MISSES", 50'000);
  opts.min_instructions = 50'000'000;

  const std::vector<std::pair<u64, u64>> combos = {
      {1, 64}, {1, 96}, {1, 128}, {2, 64}, {2, 96},
      {2, 128}, {4, 64}, {4, 96}, {4, 128}};
  const double paper[] = {1.98, 1.93, 1.86, 2.00, 1.93, 1.87, 1.93, 1.85,
                          1.78};

  std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>> configs;
  for (const auto& [block_kb, page_kb] : combos) {
    bumblebee::BumblebeeConfig cfg;
    cfg.block_bytes = block_kb * KiB;
    cfg.page_bytes = page_kb * KiB;
    configs.emplace_back(
        std::to_string(block_kb) + "-" + std::to_string(page_kb), cfg);
  }

  const auto workloads = trace::WorkloadProfile::spec2017();
  std::cerr << "fig6: " << (configs.size() + 1) << " configurations x "
            << workloads.size() << " workloads\n";
  runner.run_matrix({"DRAM-only"}, workloads, opts);
  runner.run_bumblebee_matrix(configs, workloads, opts);

  TextTable table({"block-page (KB)", "normalized IPC", "paper", "metadata"});
  for (std::size_t c = 0; c < combos.size(); ++c) {
    std::vector<double> speedups;
    for (const auto& [workload, ratio] :
         runner.normalized(configs[c].first, "DRAM-only", sim::metric_ipc)) {
      (void)workload;
      speedups.push_back(ratio);
    }

    const auto geo =
        bumblebee::Geometry::make(configs[c].second, 1 * GiB, 10 * GiB);
    const auto budget = bumblebee::metadata_budget(configs[c].second, geo);
    table.add_row({configs[c].first, fmt_double(geomean(speedups), 2),
                   fmt_double(paper[c], 2),
                   fmt_bytes(static_cast<double>(budget.total()))});
  }
  std::cout << "\nFigure 6: normalized IPC for block-page configurations\n";
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "fig6_design_space", run);
}
