// Contended-mix study: multi-programmed co-runs of the preset mixes (see
// sim/mix.h) across Bumblebee and the static HBM partitionings it subsumes
// (C-Only, 25%-C, 50%-C, M-Only). Reports weighted speedup, harmonic-mean
// speedup and max slowdown per (design, mix), normalized against per-core
// alone runs under the same design.
//
// The headline check: on a two-profile mix that blends a strong-temporal
// core with capacity-hungry streamers (cachecap4 = mcf+lbm+lbm+lbm),
// Bumblebee's adaptive cache/memory split must match or beat the best
// *static cHBM/mHBM split* (25%-C, 50%-C) on weighted speedup — no fixed
// partition suits both core classes at once. C-Only and M-Only stay in
// the tables as endpoints, but they hold no cHBM/mHBM split to keep
// static: they devote the whole HBM to one class. C-Only in particular
// can edge out every split (and Bumblebee) on blends whose bandwidth
// demand pushes the optimal ratio to all-cache; see the EXPERIMENTS.md
// contended-mix study for the full picture.
//
// Flags: --jobs N (worker threads, default = all hardware threads),
// --instructions N (per-core budget; default derives from mix workloads).
// Environment knobs: BB_SIM_SCALE (percent of default run length),
// BB_TARGET_MISSES (default 120000).
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  sim::SystemConfig sys_cfg;
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;

  // Bumblebee vs every static cHBM/mHBM split the ablation factory offers.
  const std::vector<std::string> designs = {"C-Only", "25%-C", "50%-C",
                                            "M-Only", "Bumblebee"};
  const std::vector<sim::MixSpec> mixes = sim::MixSpec::presets();

  std::cerr << "mix: simulating " << mixes.size() << " mixes x "
            << designs.size() << " designs (plus alone baselines)...\n";
  sim::ExperimentRunner runner(sys_cfg);
  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.progress = true;
  opts.instructions = flags.get_u64("instructions", 0);
  opts.target_misses = sim::env_u64("BB_TARGET_MISSES", 120'000);
  opts.min_instructions = 50'000'000;
  runner.run_mix_matrix(designs, mixes, opts);

  struct Panel {
    const char* title;
    double sim::MixResult::* metric;
    const char* better;
  };
  const Panel panels[] = {
      {"Weighted speedup (sum of per-core IPC_shared / IPC_alone)",
       &sim::MixResult::weighted_speedup, "higher"},
      {"Harmonic-mean speedup", &sim::MixResult::hmean_speedup, "higher"},
      {"Max slowdown (fairness)", &sim::MixResult::max_slowdown, "lower"},
  };

  for (const auto& panel : panels) {
    std::cout << "\n" << panel.title << "  [" << panel.better
              << " is better]\n";
    std::vector<std::string> header = {"design"};
    for (const auto& m : mixes) header.push_back(m.name);
    TextTable table(header);
    for (const auto& d : designs) {
      std::vector<std::string> row = {d};
      for (const auto& m : mixes) {
        double v = 0;
        for (const auto& r : runner.mix_results()) {
          if (r.design == d && r.mix == m.name) v = r.*(panel.metric);
        }
        row.push_back(fmt_double(v, 3));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // Per-core breakdown of the headline blend, where the adaptive split
  // has to serve both core classes at once.
  std::cout << "\nPer-core breakdown (cachecap4):\n";
  TextTable cores({"design", "core", "workload", "IPC", "alone", "speedup",
                   "HBM serve", "p99 (ns)"});
  for (const auto& r : runner.mix_results()) {
    if (r.mix != "cachecap4") continue;
    for (const auto& c : r.cores) {
      cores.add_row({r.design, std::to_string(c.perf.core), c.perf.workload,
                     fmt_double(c.perf.ipc, 2), fmt_double(c.alone_ipc, 2),
                     fmt_double(c.speedup, 2) + "x",
                     fmt_percent(c.perf.hbm_serve_rate),
                     fmt_double(c.perf.latency_p99_ns, 1)});
    }
  }
  cores.print(std::cout);

  // Headline: Bumblebee vs the best static cHBM/mHBM split on the
  // two-profile contended blend.
  double bumblebee_ws = 0, best_split_ws = 0;
  std::string best_split;
  for (const auto& r : runner.mix_results()) {
    if (r.mix != "cachecap4") continue;
    if (r.design == "Bumblebee") {
      bumblebee_ws = r.weighted_speedup;
    } else if ((r.design == "25%-C" || r.design == "50%-C") &&
               r.weighted_speedup > best_split_ws) {
      best_split_ws = r.weighted_speedup;
      best_split = r.design;
    }
  }
  std::cout << "\ncachecap4 weighted speedup: Bumblebee "
            << fmt_double(bumblebee_ws, 3) << " vs best static split ("
            << best_split << ") " << fmt_double(best_split_ws, 3) << " — "
            << (bumblebee_ws >= best_split_ws ? "Bumblebee matches or beats "
                                                "every static cHBM/mHBM split"
                                              : "static split wins (check "
                                                "configuration)")
            << "\n";
  return bumblebee_ws >= best_split_ws ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "mix_comparison", run);
}
