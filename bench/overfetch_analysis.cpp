// Section IV-B reproduction: over-fetching analysis.
//
// The percentage of data brought into HBM that is never used before
// leaving it. Paper: 13.7% for Hybrid2 (256 B blocks / 2 KB pages) vs
// 13.3% for Bumblebee (2 KB blocks / 64 KB pages) — Bumblebee's far larger
// granularity does NOT over-fetch more, thanks to the adjustable cHBM
// capacity, the hotness threshold T, and the eviction buffering.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

namespace {

int run(const Flags&) {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 80'000);
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;
  sim::System system(sys_cfg);

  TextTable table({"workload", "Bumblebee over-fetch", "Hybrid2 over-fetch"});
  std::vector<double> bb_of, h2_of;
  for (const auto& w : trace::WorkloadProfile::spec2017()) {
    const u64 instr = sim::default_instructions_for(w, target_misses);
    const auto rb = system.run("Bumblebee", w, instr);
    const auto rh = system.run("Hybrid2", w, instr);
    bb_of.push_back(rb.overfetch);
    h2_of.push_back(rh.overfetch);
    table.add_row({w.name, fmt_percent(rb.overfetch, 1),
                   fmt_percent(rh.overfetch, 1)});
    std::cerr << w.name << " done\n";
  }
  double bb_avg = 0, h2_avg = 0;
  for (double v : bb_of) bb_avg += v;
  for (double v : h2_of) h2_avg += v;
  bb_avg /= static_cast<double>(bb_of.size());
  h2_avg /= static_cast<double>(h2_of.size());
  table.add_row({"average", fmt_percent(bb_avg, 1), fmt_percent(h2_avg, 1)});

  std::cout << "\nSection IV-B: data brought into HBM but unused before "
               "eviction (paper: Bumblebee 13.3%, Hybrid2 13.7%)\n";
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "overfetch_analysis", run);
}
